// Command amoeba-trace generates load-trace CSV files ("time_seconds,qps")
// that amoeba.LoadTraceCSV and the trace-replay example consume: a
// Didi-shaped diurnal day by default, optionally with a superimposed
// burst. It closes the loop between the synthetic generator and the
// replay path, and gives experiments a way to freeze a stochastic trace
// into a reviewable file.
//
// Usage:
//
//	amoeba-trace -peak 80 -trough 16 -day 3600 -samples 720 > day.csv
//	amoeba-trace -burst-extra 40 -burst-from 1200 -burst-to 1500 > bursty.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"amoeba/internal/trace"
)

func main() {
	var (
		peak      = flag.Float64("peak", 80, "daytime peak QPS")
		trough    = flag.Float64("trough", 16, "night trough QPS")
		day       = flag.Float64("day", 3600, "day length in virtual seconds")
		samples   = flag.Int("samples", 720, "samples across the day")
		seed      = flag.Uint64("seed", 1, "noise seed")
		burstQPS  = flag.Float64("burst-extra", 0, "extra QPS during the burst window (0 = no burst)")
		burstFrom = flag.Float64("burst-from", 0, "burst start, seconds")
		burstTo   = flag.Float64("burst-to", 0, "burst end, seconds")
	)
	flag.Parse()

	if *peak <= *trough || *trough < 0 {
		fmt.Fprintln(os.Stderr, "amoeba-trace: need peak > trough >= 0")
		os.Exit(2)
	}
	if *samples < 2 || *day <= 0 {
		fmt.Fprintln(os.Stderr, "amoeba-trace: need day > 0 and samples >= 2")
		os.Exit(2)
	}

	var tr trace.Trace = trace.NewDiurnal(*peak, *trough, *day, *seed)
	if *burstQPS > 0 {
		if !(*burstFrom < *burstTo) {
			fmt.Fprintln(os.Stderr, "amoeba-trace: need burst-from < burst-to")
			os.Exit(2)
		}
		tr = trace.Burst{Inner: tr, Extra: *burstQPS, From: *burstFrom, To: *burstTo}
	}

	sampled := trace.Resample(tr, 0, *day, *samples)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# diurnal trace: peak=%g trough=%g day=%gs seed=%d\n", *peak, *trough, *day, *seed)
	fmt.Fprintln(w, "time_s,qps")
	for i := 0; i < *samples; i++ {
		t := *day * float64(i) / float64(*samples-1)
		fmt.Fprintf(w, "%.1f,%.3f\n", t, sampled.Rate(t))
	}
}
