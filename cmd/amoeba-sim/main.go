// Command amoeba-sim runs one benchmark under one system variant for a
// configurable number of virtual days and prints the outcome: QoS
// statistics, deploy-mode switches, and resource usage.
//
// Usage:
//
//	amoeba-sim -bench dd -variant amoeba -days 1 -day-length 3600 -seed 7
//
// Telemetry flags:
//
//	-events out.jsonl   write the full event stream as JSON lines
//	-metrics-dump       print Prometheus-text metrics after the run
//	-audit              print the decision-audit and switch-span tables
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"amoeba"
	"amoeba/internal/report"
)

var variants = map[string]amoeba.Variant{
	"amoeba":     amoeba.Amoeba,
	"amoeba-nom": amoeba.AmoebaNoM,
	"amoeba-nop": amoeba.AmoebaNoP,
	"nameko":     amoeba.Nameko,
	"openwhisk":  amoeba.OpenWhisk,
	"autoscale":  amoeba.Autoscale,
}

func main() {
	var (
		benchName = flag.String("bench", "dd", "benchmark: float, matmul, linpack, dd, cloud_stor")
		variant   = flag.String("variant", "amoeba", "system: amoeba, amoeba-nom, amoeba-nop, nameko, openwhisk, autoscale")
		days      = flag.Float64("days", 1, "virtual days to simulate")
		dayLength = flag.Float64("day-length", 3600, "virtual seconds per day")
		trough    = flag.Float64("trough", 0.2, "night trough as a fraction of peak load")
		seed      = flag.Uint64("seed", 0xA0EBA, "simulation seed")
		noBG      = flag.Bool("no-background", false, "disable the background co-tenants")
		timeline  = flag.Bool("timeline", false, "print the deploy-mode switch timeline")
		events    = flag.String("events", "", "write the telemetry event stream as JSON lines to this file")
		dumpReg   = flag.Bool("metrics-dump", false, "print Prometheus-text metrics after the run")
		audit     = flag.Bool("audit", false, "print the decision-audit and switch-span tables")
		shards    = flag.Int("shards", 0, "run on the sharded kernel with this many workers (0 = sequential kernel); output is identical for every positive value")
	)
	flag.Parse()

	prof, err := amoeba.BenchmarkByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	v, ok := variants[*variant]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	opts := amoeba.DefaultScenarioOptions()
	opts.Days = *days
	opts.DayLength = amoeba.Seconds(*dayLength)
	opts.TroughFraction = amoeba.Fraction(*trough)
	opts.Seed = *seed
	opts.Background = !*noBG

	// Telemetry: build one bus carrying every requested sink.
	var (
		bus     *amoeba.EventBus
		jsonl   *amoeba.EventJSONLWriter
		ring    *amoeba.EventRing
		reg     *amoeba.MetricsRegistry
		flushFn func() error
	)
	if *events != "" || *dumpReg || *audit {
		bus = amoeba.NewEventBus()
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		jsonl = amoeba.NewEventJSONLWriter(bw)
		bus.Attach(jsonl)
		flushFn = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	if *dumpReg {
		reg = amoeba.NewMetricsRegistry()
		bus.Attach(amoeba.NewMetricsSink(reg))
	}
	if *audit {
		ring = amoeba.NewEventRing(1 << 18)
		bus.Attach(ring)
	}

	fmt.Printf("running %s under %s for %.1f day(s) of %.0fs...\n",
		prof.Name, *variant, *days, *dayLength)
	sc := amoeba.NewScenario(v, prof, opts)
	sc.Bus = bus
	var res *amoeba.Result
	if *shards > 0 {
		res = amoeba.RunSharded(sc, *shards)
	} else {
		res = amoeba.Run(sc)
	}
	sr := res.Services[prof.Name]

	t := report.NewTable("result", "metric", "value")
	t.AddRow("queries", sr.Collector.Count())
	t.AddRow("p95 latency (s)", sr.Collector.P95())
	t.AddRow("QoS target (s)", prof.QoSTarget)
	t.AddRow("QoS met", sr.Collector.QoSMet())
	t.AddRow("violating queries", fmt.Sprintf("%.2f%%", 100*sr.Collector.ViolationFraction()))
	t.AddRow("served by IaaS", sr.Collector.BackendCount(amoeba.BackendIaaS))
	t.AddRow("served by serverless", sr.Collector.BackendCount(amoeba.BackendServerless))
	t.AddRow("switches to serverless", sr.Timeline.SwitchCount(amoeba.BackendServerless))
	t.AddRow("switches to IaaS", sr.Timeline.SwitchCount(amoeba.BackendIaaS))
	t.AddRow("blocked switch-ins", sr.BlockedSwitches)
	t.AddRow("CPU usage (core-s)", sr.TotalUsage().CPU)
	t.AddRow("memory usage (MB-s)", sr.TotalUsage().MemMB)
	t.AddRow("meter overhead (core-s)", res.MeterCPUSeconds)
	t.AddRow("simulated events", res.Events)
	fmt.Print(t.String())

	if *timeline {
		tl := report.NewTable("switch timeline", "t_seconds", "to", "load_qps")
		for _, sw := range sr.Timeline.Switches {
			tl.AddRow(fmt.Sprintf("%.0f", sw.At), sw.To.String(), fmt.Sprintf("%.1f", sw.LoadQPS))
		}
		fmt.Print(tl.String())
	}
	if *audit {
		evs := ring.Events()
		fmt.Print(amoeba.DecisionAuditTable(evs).String())
		fmt.Print(amoeba.SwitchSpanTable(evs).String())
		if ring.Seen() > ring.Len() {
			fmt.Printf("(audit ring kept the last %d of %d events)\n", ring.Len(), ring.Seen())
		}
	}
	if *dumpReg {
		fmt.Println("metrics:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", err)
			os.Exit(1)
		}
		if err := flushFn(); err != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s\n", jsonl.Count(), *events)
	}
}
