// Command amoeba-events validates and summarises a telemetry JSONL
// stream produced by amoeba-sim -events.
//
// Validation checks, in order, per line:
//
//  1. the line is a JSON object with a known "kind" discriminator,
//  2. it strictly decodes into that kind's event struct (unknown fields
//     are an error — they mean the stream and the schema diverged),
//  3. the "at" timestamps are non-decreasing over the stream (the
//     determinism contract emits in sim-clock order),
//  4. decision events carry one of the six declared controller verdicts
//     (controller.Verdict.Valid) — a misspelled or novel verdict means
//     the audit trail and the enum diverged.
//
// Usage:
//
//	amoeba-events -validate events.jsonl
//	amoeba-sim -events /dev/stdout ... | amoeba-events -validate
//
// Exit status is non-zero on the first violation. With -counts the
// per-kind event totals are printed after a clean validation.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"amoeba/internal/controller"
	"amoeba/internal/obs"
	"amoeba/internal/units"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "strictly validate the stream (required)")
		counts   = flag.Bool("counts", false, "print per-kind event totals after validating")
	)
	flag.Parse()
	if !*validate {
		fmt.Fprintln(os.Stderr, "usage: amoeba-events -validate [-counts] [file.jsonl]")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	perKind, total, err := validateStream(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events valid\n", name, total)
	if *counts {
		kinds := make([]string, 0, len(perKind))
		for k := range perKind {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %-16s %d\n", k, perKind[obs.Kind(k)])
		}
	}
}

// validateStream checks every line of the stream; it returns per-kind
// counts and the total on success, or the first violation.
func validateStream(r io.Reader) (map[obs.Kind]int, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	perKind := map[obs.Kind]int{}
	total := 0
	last := units.Seconds(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind obs.Kind `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, 0, fmt.Errorf("line %d: not a JSON object: %v", lineNo, err)
		}
		ev, err := decodeStrict(probe.Kind, line)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if at := ev.EventTime(); at < last {
			return nil, 0, fmt.Errorf("line %d: timestamp %v before previous %v — stream not in sim-clock order",
				lineNo, at, last)
		} else {
			last = at
		}
		perKind[probe.Kind]++
		total++
	}
	return perKind, total, sc.Err()
}

// decodeStrict decodes one line into the concrete struct of its kind,
// rejecting unknown fields.
func decodeStrict(k obs.Kind, line []byte) (obs.Event, error) {
	var ev obs.Event
	switch k {
	case obs.KindQueryComplete:
		ev = &obs.QueryComplete{}
	case obs.KindColdStart:
		ev = &obs.ColdStart{}
	case obs.KindDecision:
		ev = &obs.DecisionEvent{}
	case obs.KindSwitchSpan:
		ev = &obs.SwitchSpan{}
	case obs.KindHeartbeat:
		ev = &obs.HeartbeatSample{}
	case obs.KindMeterSample:
		ev = &obs.MeterSample{}
	default:
		return nil, fmt.Errorf("unknown event kind %q", k)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(ev); err != nil {
		return nil, fmt.Errorf("kind %q: %v", k, err)
	}
	if d, ok := ev.(*obs.DecisionEvent); ok {
		if v := controller.Verdict(d.Verdict); !v.Valid() {
			return nil, fmt.Errorf("kind %q: verdict %q outside the controller.Verdict enum", k, d.Verdict)
		}
	}
	return ev, nil
}
