// Command amoeba-events validates, summarises, and exports a telemetry
// JSONL stream produced by amoeba-sim -events.
//
// Validation checks, in order, per line:
//
//  1. the line is a JSON object with a known "kind" discriminator,
//  2. it strictly decodes into that kind's event struct (unknown fields
//     are an error — they mean the stream and the schema diverged),
//  3. the "at" timestamps are non-decreasing over the stream (the
//     determinism contract emits in sim-clock order; per-trace
//     monotonicity follows from the global order),
//  4. decision events carry one of the six declared controller verdicts
//     (controller.Verdict.Valid) — a misspelled or novel verdict means
//     the audit trail and the enum diverged,
//  5. phase spans carry a valid phase, a positive duration, and are
//     emitted at their end instant (the tracer emits only closed
//     spans, so "every span closes" is checked structurally),
//
// and, over the whole stream once it ends:
//
//  6. span IDs are unique; every record is either fully traced or fully
//     untraced (trace == 0 iff span == 0),
//  7. every Parent reference resolves to an interval span of the same
//     trace, and the child's interval nests inside the parent's,
//  8. every causal edge resolves to a span of the right kind: Cause →
//     a switch span, MeterSpan → a meter sample, Decision → a decision
//     event. Forward references are legal — a query's root span is
//     emitted after its phase children.
//
// Merged multi-shard streams (amoeba-sim -shards) pass the same checks
// unchanged: the epoch merge must preserve the global sim-clock order
// (check 3), trace/span IDs are allocated from disjoint strided
// per-cell namespaces so uniqueness must hold across the whole merged
// stream (check 6, reporting ErrIDCollision on a collision), and causal
// edges may cross namespaces (a heartbeat's meter_span points into the
// monitor daemon's namespace).
//
// Usage:
//
//	amoeba-events -validate events.jsonl
//	amoeba-events -validate -perfetto trace.json events.jsonl
//	amoeba-events -check-perfetto trace.json
//	amoeba-sim -events /dev/stdout ... | amoeba-events -validate
//
// Exit status is non-zero on the first violation. With -counts the
// per-kind event totals are printed after a clean validation. With
// -perfetto the validated stream is additionally exported as a Chrome
// trace-event JSON file loadable in Perfetto (ui.perfetto.dev);
// -check-perfetto structurally checks such an export and exits.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"amoeba/internal/controller"
	"amoeba/internal/obs"
	"amoeba/internal/units"
)

// ErrIDCollision marks a span ID declared twice in one stream. Within a
// single simulation it means the tracer's counter discipline broke; in
// a merged multi-shard stream it means two cell namespaces overlapped
// (the strided allocation should make that impossible). Callers match
// it with errors.Is.
var ErrIDCollision = errors.New("span ID collision")

func main() {
	var (
		validate = flag.Bool("validate", false, "strictly validate the stream (required unless -check-perfetto)")
		counts   = flag.Bool("counts", false, "print per-kind event totals after validating")
		perfetto = flag.String("perfetto", "", "after validating, write a Chrome trace-event (Perfetto) JSON file here")
		checkPf  = flag.String("check-perfetto", "", "structurally check an exported Perfetto JSON file and exit")
	)
	flag.Parse()
	if *checkPf != "" {
		if err := checkPerfettoFile(*checkPf); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *checkPf, err)
			os.Exit(1)
		}
		fmt.Printf("%s: perfetto trace OK\n", *checkPf)
		return
	}
	if !*validate {
		fmt.Fprintln(os.Stderr, "usage: amoeba-events -validate [-counts] [-perfetto out.json] [file.jsonl]")
		fmt.Fprintln(os.Stderr, "       amoeba-events -check-perfetto trace.json")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var exp *perfettoExporter
	var visit func(obs.Event)
	if *perfetto != "" {
		exp = &perfettoExporter{}
		visit = exp.visit
	}
	perKind, total, err := validateStream(in, visit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events valid\n", name, total)
	if *counts {
		kinds := make([]string, 0, len(perKind))
		for k := range perKind {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %-16s %d\n", k, perKind[obs.Kind(k)])
		}
	}
	if exp != nil {
		if err := exp.writeFile(*perfetto); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *perfetto, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d trace events\n", *perfetto, exp.emitted)
	}
}

// validateStream checks every line of the stream and the whole-stream
// trace invariants; it returns per-kind counts and the total on
// success, or the first violation. visit, when non-nil, sees every
// decoded event in stream order after it validated.
func validateStream(r io.Reader, visit func(obs.Event)) (map[obs.Kind]int, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	perKind := map[obs.Kind]int{}
	total := 0
	last := units.Seconds(0)
	lineNo := 0
	tc := newTraceChecker()
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind obs.Kind `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, 0, fmt.Errorf("line %d: not a JSON object: %v", lineNo, err)
		}
		ev, err := decodeStrict(probe.Kind, line)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if at := ev.EventTime(); at < last {
			return nil, 0, fmt.Errorf("line %d: timestamp %v before previous %v — stream not in sim-clock order",
				lineNo, at, last)
		} else {
			last = at
		}
		if err := tc.observe(ev, lineNo); err != nil {
			return nil, 0, err
		}
		if visit != nil {
			visit(ev)
		}
		perKind[probe.Kind]++
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if err := tc.finish(); err != nil {
		return nil, 0, err
	}
	return perKind, total, nil
}

// decodeStrict decodes one line into the concrete struct of its kind,
// rejecting unknown fields.
func decodeStrict(k obs.Kind, line []byte) (obs.Event, error) {
	var ev obs.Event
	switch k {
	case obs.KindQueryComplete:
		ev = &obs.QueryComplete{}
	case obs.KindColdStart:
		ev = &obs.ColdStart{}
	case obs.KindDecision:
		ev = &obs.DecisionEvent{}
	case obs.KindSwitchSpan:
		ev = &obs.SwitchSpan{}
	case obs.KindHeartbeat:
		ev = &obs.HeartbeatSample{}
	case obs.KindMeterSample:
		ev = &obs.MeterSample{}
	case obs.KindPhaseSpan:
		ev = &obs.PhaseSpan{}
	default:
		return nil, fmt.Errorf("unknown event kind %q", k)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(ev); err != nil {
		return nil, fmt.Errorf("kind %q: %v", k, err)
	}
	switch e := ev.(type) {
	case *obs.DecisionEvent:
		if v := controller.Verdict(e.Verdict); !v.Valid() {
			return nil, fmt.Errorf("kind %q: verdict %q outside the controller.Verdict enum", k, e.Verdict)
		}
	case *obs.PhaseSpan:
		if !e.Phase.Valid() {
			return nil, fmt.Errorf("kind %q: phase %q outside the obs.Phase enum", k, e.Phase)
		}
	case *obs.QueryComplete, *obs.ColdStart, *obs.SwitchSpan, *obs.HeartbeatSample, *obs.MeterSample:
		// No embedded enum field beyond the kind itself.
	}
	return ev, nil
}

// spanRec is one span the stream declared, addressable by SpanID.
type spanRec struct {
	kind       obs.Kind
	trace      obs.TraceID
	start, end units.Seconds
	interval   bool // instants (decision, heartbeat, meter) are points
	line       int
}

// spanRef is one edge awaiting resolution at end of stream (forward
// references are legal: a query's root span follows its children).
type spanRef struct {
	line   int
	target obs.SpanID
	what   string   // field name, for the error message
	want   obs.Kind // required kind of the target span
	// nest, when set, additionally requires the referenced span to be an
	// interval of the same trace enclosing [start, end].
	nest       bool
	trace      obs.TraceID
	start, end units.Seconds
}

// traceChecker accumulates the whole-stream causal-DAG invariants.
type traceChecker struct {
	spans map[obs.SpanID]spanRec
	refs  []spanRef
}

func newTraceChecker() *traceChecker {
	return &traceChecker{spans: map[obs.SpanID]spanRec{}}
}

// declare records a span the stream introduced, enforcing the paired
// zero rule and span-ID uniqueness.
func (tc *traceChecker) declare(line int, kind obs.Kind, trace obs.TraceID, span obs.SpanID,
	start, end units.Seconds, interval bool) error {

	if (trace == 0) != (span == 0) {
		return fmt.Errorf("line %d: %s: trace %d and span %d must both be zero or both be set",
			line, kind, trace, span)
	}
	if span == 0 {
		return nil // untraced record; nothing to register
	}
	if prev, dup := tc.spans[span]; dup {
		return fmt.Errorf("line %d: %s: %w: span %d already declared on line %d",
			line, kind, ErrIDCollision, span, prev.line)
	}
	tc.spans[span] = spanRec{kind: kind, trace: trace, start: start, end: end, interval: interval, line: line}
	return nil
}

// refer queues a causal edge for end-of-stream resolution.
func (tc *traceChecker) refer(line int, target obs.SpanID, what string, want obs.Kind) {
	if target == 0 {
		return
	}
	tc.refs = append(tc.refs, spanRef{line: line, target: target, what: what, want: want})
}

// observe folds one validated event into the checker.
func (tc *traceChecker) observe(ev obs.Event, line int) error {
	switch e := ev.(type) {
	case *obs.QueryComplete:
		if e.Arrived > e.At {
			return fmt.Errorf("line %d: query_complete: arrived %v after completion %v", line, e.Arrived, e.At)
		}
		if err := tc.declare(line, obs.KindQueryComplete, e.Trace, e.Span, e.Arrived, e.At, true); err != nil {
			return err
		}
		tc.refer(line, e.Cause, "cause", obs.KindSwitchSpan)
	case *obs.PhaseSpan:
		if e.Trace == 0 || e.Span == 0 {
			return fmt.Errorf("line %d: phase_span: zero trace/span — phase spans exist only on traced runs", line)
		}
		if e.End <= e.Start {
			return fmt.Errorf("line %d: phase_span %d: non-positive duration [%v, %v] — zero-length phases are dropped at emit",
				line, e.Span, e.Start, e.End)
		}
		if e.At != e.End {
			return fmt.Errorf("line %d: phase_span %d: emitted at %v, not at its end %v — spans are emitted when they close",
				line, e.Span, e.At, e.End)
		}
		if err := tc.declare(line, obs.KindPhaseSpan, e.Trace, e.Span, e.Start, e.End, true); err != nil {
			return err
		}
		if e.Parent != 0 {
			tc.refs = append(tc.refs, spanRef{
				line: line, target: e.Parent, what: "parent", nest: true,
				trace: e.Trace, start: e.Start, end: e.End,
			})
		}
		// A retry phase is caused by the dwell-held decision; every other
		// caused phase (displaced queries, prewarm cold starts) points at
		// the switch span doing the displacing.
		causeKind := obs.KindSwitchSpan
		if e.Phase == obs.PhaseRetry {
			causeKind = obs.KindDecision
		}
		tc.refer(line, e.Cause, "cause", causeKind)
	case *obs.SwitchSpan:
		if e.Start > e.FlipAt || e.FlipAt > e.End {
			return fmt.Errorf("line %d: switch_span: instants not ordered: start %v, flip %v, end %v",
				line, e.Start, e.FlipAt, e.End)
		}
		if err := tc.declare(line, obs.KindSwitchSpan, e.Trace, e.Span, e.Start, e.End, true); err != nil {
			return err
		}
		tc.refer(line, e.Decision, "decision_span", obs.KindDecision)
	case *obs.DecisionEvent:
		if err := tc.declare(line, obs.KindDecision, e.Trace, e.Span, e.At, e.At, false); err != nil {
			return err
		}
		tc.refer(line, e.MeterSpan, "meter_span", obs.KindMeterSample)
	case *obs.HeartbeatSample:
		if err := tc.declare(line, obs.KindHeartbeat, e.Trace, e.Span, e.At, e.At, false); err != nil {
			return err
		}
		tc.refer(line, e.MeterSpan, "meter_span", obs.KindMeterSample)
	case *obs.MeterSample:
		if err := tc.declare(line, obs.KindMeterSample, e.Trace, e.Span, e.At, e.At, false); err != nil {
			return err
		}
	case *obs.ColdStart:
		// Cold starts carry no trace coordinates of their own; the
		// query-visible delay is the cold_start phase span.
	}
	return nil
}

// finish resolves every queued edge once the stream ended.
func (tc *traceChecker) finish() error {
	for _, ref := range tc.refs {
		rec, ok := tc.spans[ref.target]
		if !ok {
			what := ref.what
			if ref.nest {
				what = "parent"
			}
			return fmt.Errorf("line %d: %s span %d never appears in the stream — orphan reference",
				ref.line, what, ref.target)
		}
		if ref.nest {
			if !rec.interval {
				return fmt.Errorf("line %d: parent span %d (%s, line %d) is an instant, not an interval",
					ref.line, ref.target, rec.kind, rec.line)
			}
			if rec.trace != ref.trace {
				return fmt.Errorf("line %d: parent span %d belongs to trace %d, child to trace %d — parents must not cross traces",
					ref.line, ref.target, rec.trace, ref.trace)
			}
			if ref.start < rec.start || ref.end > rec.end {
				return fmt.Errorf("line %d: child [%v, %v] escapes parent span %d [%v, %v]",
					ref.line, ref.start, ref.end, ref.target, rec.start, rec.end)
			}
			continue
		}
		if rec.kind != ref.want {
			return fmt.Errorf("line %d: %s %d resolves to a %s span (line %d), want %s",
				ref.line, ref.what, ref.target, rec.kind, rec.line, ref.want)
		}
	}
	return nil
}
