package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amoeba/internal/obs"
)

// jsonl marshals events into a JSONL stream, stamping kinds the way the
// bus does.
func jsonl(t *testing.T, events ...obs.Event) string {
	t.Helper()
	var b strings.Builder
	bus := obs.NewBus()
	bus.Attach(obs.NewJSONLWriter(&b))
	for _, ev := range events {
		bus.Emit(ev)
	}
	return b.String()
}

// goodStream is a minimal causally-complete trace: a meter sample, a
// decision pointing at it, a switch ordered by the decision, a displaced
// query whose phases tile its root interval, and a drain phase parented
// to the switch.
func goodStream(t *testing.T) string {
	return jsonl(t,
		&obs.MeterSample{At: 1, Trace: 1, Span: 1, Pressure: [3]float64{0.1, 0.2, 0.3}},
		&obs.DecisionEvent{At: 2, Service: "dd", Verdict: "switch-in", Trace: 2, Span: 2, MeterSpan: 1},
		&obs.PhaseSpan{At: 6, Trace: 3, Span: 4, Parent: 5, Cause: 3,
			Phase: obs.PhaseQueueWait, Service: "dd", Backend: "serverless", Start: 4, End: 6},
		&obs.PhaseSpan{At: 8, Trace: 3, Span: 6, Parent: 5,
			Phase: obs.PhaseExec, Service: "dd", Backend: "serverless", Start: 6, End: 8},
		&obs.PhaseSpan{At: 9, Trace: 2, Span: 7, Parent: 3,
			Phase: obs.PhaseDrain, Service: "dd", Backend: "iaas", Start: 5, End: 9},
		&obs.SwitchSpan{At: 9, Service: "dd", From: "iaas", To: "serverless",
			Start: 2, FlipAt: 5, End: 9, Trace: 2, Span: 3, Decision: 2},
		&obs.QueryComplete{At: 9, Service: "dd", Backend: "serverless",
			Arrived: 4, Latency: 5, Trace: 3, Span: 5, Cause: 3},
	)
}

func TestValidateGoodStream(t *testing.T) {
	perKind, total, err := validateStream(strings.NewReader(goodStream(t)), nil)
	if err != nil {
		t.Fatalf("good stream rejected: %v", err)
	}
	if total != 7 {
		t.Fatalf("validated %d events, want 7", total)
	}
	if perKind[obs.KindPhaseSpan] != 3 {
		t.Fatalf("counted %d phase spans, want 3", perKind[obs.KindPhaseSpan])
	}
}

func TestValidateRejectsTraceViolations(t *testing.T) {
	cases := map[string]struct {
		stream string
		want   string
	}{
		"orphan parent": {
			jsonl(t, &obs.PhaseSpan{At: 2, Trace: 1, Span: 1, Parent: 99,
				Phase: obs.PhaseExec, Service: "dd", Start: 1, End: 2}),
			"never appears",
		},
		"child escapes parent": {
			jsonl(t,
				&obs.PhaseSpan{At: 5, Trace: 1, Span: 2, Parent: 1,
					Phase: obs.PhaseExec, Service: "dd", Start: 3, End: 5},
				&obs.QueryComplete{At: 9, Service: "dd", Arrived: 4, Trace: 1, Span: 1}),
			"escapes parent",
		},
		"parent crosses traces": {
			jsonl(t,
				&obs.PhaseSpan{At: 6, Trace: 2, Span: 2, Parent: 1,
					Phase: obs.PhaseExec, Service: "dd", Start: 5, End: 6},
				&obs.QueryComplete{At: 8, Service: "dd", Arrived: 4, Trace: 1, Span: 1}),
			"cross traces",
		},
		"parent is an instant": {
			jsonl(t,
				&obs.DecisionEvent{At: 1, Service: "dd", Verdict: "stay-iaas", Trace: 1, Span: 1},
				&obs.PhaseSpan{At: 3, Trace: 1, Span: 2, Parent: 1,
					Phase: obs.PhaseExec, Service: "dd", Start: 2, End: 3}),
			"instant, not an interval",
		},
		"duplicate span id": {
			jsonl(t,
				&obs.QueryComplete{At: 2, Service: "dd", Arrived: 1, Trace: 1, Span: 1},
				&obs.QueryComplete{At: 3, Service: "dd", Arrived: 2, Trace: 2, Span: 1}),
			"already declared",
		},
		"zero-length phase": {
			jsonl(t, &obs.PhaseSpan{At: 2, Trace: 1, Span: 1,
				Phase: obs.PhaseExec, Service: "dd", Start: 2, End: 2}),
			"non-positive duration",
		},
		"phase not emitted at end": {
			jsonl(t, &obs.PhaseSpan{At: 5, Trace: 1, Span: 1,
				Phase: obs.PhaseExec, Service: "dd", Start: 1, End: 2}),
			"not at its end",
		},
		"untraced phase span": {
			jsonl(t, &obs.PhaseSpan{At: 2, Trace: 0, Span: 0,
				Phase: obs.PhaseExec, Service: "dd", Start: 1, End: 2}),
			"zero trace/span",
		},
		"half-traced record": {
			jsonl(t, &obs.QueryComplete{At: 2, Service: "dd", Arrived: 1, Trace: 1, Span: 0}),
			"both be zero or both be set",
		},
		"cause of wrong kind": {
			jsonl(t,
				&obs.QueryComplete{At: 2, Service: "dd", Arrived: 1, Trace: 1, Span: 1},
				&obs.QueryComplete{At: 3, Service: "dd", Arrived: 2, Trace: 2, Span: 2, Cause: 1}),
			"want switch_span",
		},
		"unknown phase": {
			strings.Replace(
				jsonl(t, &obs.PhaseSpan{At: 2, Trace: 1, Span: 1,
					Phase: obs.PhaseExec, Service: "dd", Start: 1, End: 2}),
				`"phase":"exec"`, `"phase":"warmup"`, 1),
			"outside the obs.Phase enum",
		},
	}
	for name, tc := range cases {
		_, _, err := validateStream(strings.NewReader(tc.stream), nil)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestPerfettoExportRoundTrip(t *testing.T) {
	exp := &perfettoExporter{}
	if _, _, err := validateStream(strings.NewReader(goodStream(t)), exp.visit); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := exp.writeFile(path); err != nil {
		t.Fatal(err)
	}
	if err := checkPerfettoFile(path); err != nil {
		t.Fatalf("exported trace fails its own checker: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wrapper struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatal(err)
	}
	var phases, durable, instants, counters int
	for _, ev := range wrapper.TraceEvents {
		switch ev.Ph {
		case "X":
			durable++
			if ev.Dur <= 0 {
				t.Errorf("X event %q has non-positive duration %g", ev.Name, ev.Dur)
			}
			if ev.Name == string(obs.PhaseExec) {
				phases++
				// 1e6 µs/s: the exec span [6, 8] must land at ts 6e6 for 2e6.
				if ev.Ts != 6e6 || ev.Dur != 2e6 {
					t.Errorf("exec span at ts=%g dur=%g, want 6e6/2e6", ev.Ts, ev.Dur)
				}
			}
		case "i":
			instants++
		case "C":
			counters++
		}
	}
	// 3 phase spans + 1 switch + 1 query root; 1 decision instant;
	// 1 pressure counter.
	if durable != 5 || instants != 1 || counters != 1 || phases != 1 {
		t.Errorf("event census X=%d i=%d C=%d exec=%d, want 5/1/1/1", durable, instants, counters, phases)
	}
}

func TestCheckPerfettoRejectsBrokenTraces(t *testing.T) {
	write := func(body string) string {
		path := filepath.Join(t.TempDir(), "t.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]struct{ body, want string }{
		"empty":        {`{"traceEvents":[]}`, "empty"},
		"unknown ph":   {`{"traceEvents":[{"name":"q","ph":"Z","pid":1}]}`, "unknown phase"},
		"nameless pid": {`{"traceEvents":[{"name":"q","ph":"X","pid":1,"dur":5}]}`, "no process_name"},
		"negative dur": {`{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"args":{"name":"p"}},{"name":"q","ph":"X","pid":1,"dur":-1}]}`, "negative duration"},
	}
	for name, tc := range cases {
		err := checkPerfettoFile(write(tc.body))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
