package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"amoeba/internal/core"
	"amoeba/internal/obs"
	"amoeba/internal/units"
)

// mergedStream is a synthetic two-namespace merge in canonical
// (timestamp, namespace) order, the shape core.RunSharded produces:
// namespace 1 holds odd span IDs (stride 2), namespace 2 holds even
// ones, and the namespace-2 decision causally references the
// namespace-1 meter sample — a legal cross-namespace edge.
func mergedStream(t *testing.T) string {
	return jsonl(t,
		&obs.MeterSample{At: 1, Trace: 1, Span: 1, Pressure: [3]float64{0.1, 0.2, 0.3}},
		&obs.DecisionEvent{At: 2, Service: "ns2-svc", Verdict: "stay-iaas", Trace: 2, Span: 2, MeterSpan: 1},
		&obs.DecisionEvent{At: 2, Service: "ns1-svc", Verdict: "stay-iaas", Trace: 3, Span: 3, MeterSpan: 1},
		&obs.QueryComplete{At: 5, Service: "ns1-svc", Backend: "iaas",
			Arrived: 3, Latency: 2, Trace: 5, Span: 5},
		&obs.QueryComplete{At: 5, Service: "ns2-svc", Backend: "serverless",
			Arrived: 3, Latency: 2, Trace: 4, Span: 4},
	)
}

func TestValidateMergedMultiShardStream(t *testing.T) {
	_, total, err := validateStream(strings.NewReader(mergedStream(t)), nil)
	if err != nil {
		t.Fatalf("merged stream rejected: %v", err)
	}
	if total != 5 {
		t.Fatalf("validated %d events, want 5", total)
	}
}

// TestValidateRejectsCollidingNamespaces pins the failure mode the
// validator exists to catch after a merge: two shards handing out the
// same span ID. The error must be identifiable as ErrIDCollision so
// drivers can distinguish a mis-seeded merge from other trace breaks.
func TestValidateRejectsCollidingNamespaces(t *testing.T) {
	stream := jsonl(t,
		&obs.QueryComplete{At: 3, Service: "a", Arrived: 1, Latency: 2, Trace: 1, Span: 7},
		&obs.QueryComplete{At: 4, Service: "b", Arrived: 2, Latency: 2, Trace: 2, Span: 7},
	)
	_, _, err := validateStream(strings.NewReader(stream), nil)
	if err == nil {
		t.Fatal("colliding span IDs accepted")
	}
	if !errors.Is(err, ErrIDCollision) {
		t.Fatalf("collision error not ErrIDCollision: %v", err)
	}
}

// TestValidateShardedRunEndToEnd validates a real merged stream from the
// sharded kernel. The fleet runs pure serverless (no deploy-mode
// switches), so every causal edge is guaranteed closed by the horizon —
// Amoeba-variant runs can legally end mid-switch, which orphans Cause
// references by design (see the command doc).
func TestValidateShardedRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fleet simulation")
	}
	var buf bytes.Buffer
	sc := core.FleetScenario(6, 17, units.Seconds(600))
	sc.Variant = core.VariantOpenWhisk
	bus := obs.NewBus()
	bus.Attach(obs.NewJSONLWriter(&buf))
	sc.Bus = bus
	core.RunSharded(sc, 4)

	perKind, total, err := validateStream(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("sharded run stream rejected: %v", err)
	}
	if total == 0 {
		t.Fatal("sharded run emitted no events")
	}
	if perKind[obs.KindQueryComplete] == 0 {
		t.Fatal("sharded run completed no queries")
	}
}
