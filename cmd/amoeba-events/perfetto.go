package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/units"
)

// Chrome trace-event export (the JSON flavour Perfetto's UI loads
// directly). The mapping:
//
//	service  → process (pid ≥ 1, sorted by name; pid 0 is "platform")
//	backend  → thread (1 iaas, 2 serverless, 3 control plane)
//	interval → "X" complete event (ts/dur in microseconds)
//	instant  → "i" instant event (decisions, cold starts, heartbeats)
//	pressure → "C" counter event on the platform process
//
// Trace coordinates ride in args, so a span click in the UI shows the
// causal edges the validator checked.

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Thread IDs within each service process.
const (
	tidIaaS       = 1
	tidServerless = 2
	tidControl    = 3
)

// backendTID maps a span's backend label to its thread lane; spans with
// no backend (control-plane activity) land on the control lane.
func backendTID(backend string) int {
	switch backend {
	case metrics.BackendIaaS.String():
		return tidIaaS
	case metrics.BackendServerless.String():
		return tidServerless
	default:
		return tidControl
	}
}

// perfettoExporter buffers validated events and renders them to a
// trace-event JSON file.
type perfettoExporter struct {
	events  []obs.Event
	emitted int
}

// visit buffers one validated event (the validateStream visitor).
func (p *perfettoExporter) visit(ev obs.Event) { p.events = append(p.events, ev) }

// us converts a sim instant to trace-event microseconds.
func us(s units.Seconds) float64 { return s.Raw() * 1e6 }

// spanArgs builds the args block carrying the causal coordinates.
func spanArgs(trace obs.TraceID, span, parent, cause obs.SpanID) map[string]any {
	a := map[string]any{}
	if trace != 0 {
		a["trace"] = uint64(trace)
	}
	if span != 0 {
		a["span"] = uint64(span)
	}
	if parent != 0 {
		a["parent"] = uint64(parent)
	}
	if cause != 0 {
		a["cause"] = uint64(cause)
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// render lays the buffered events out as trace events: metadata first
// (stable pid assignment by sorted service name), then the stream in
// its original order — the export of a deterministic run is itself
// deterministic.
func (p *perfettoExporter) render() []traceEvent {
	services := map[string]int{}
	for _, ev := range p.events {
		name := ""
		switch e := ev.(type) {
		case *obs.QueryComplete:
			name = e.Service
		case *obs.ColdStart:
			name = e.Service
		case *obs.DecisionEvent:
			name = e.Service
		case *obs.SwitchSpan:
			name = e.Service
		case *obs.HeartbeatSample:
			name = e.Service
		case *obs.PhaseSpan:
			name = e.Service
		case *obs.MeterSample:
			// Platform-scoped: rendered as a counter on pid 0.
		}
		if name != "" {
			services[name] = 0
		}
	}
	names := make([]string, 0, len(services))
	for name := range services {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		services[name] = i + 1 // pid 0 is the platform process
	}

	var out []traceEvent
	meta := func(pid int, key, name string) {
		out = append(out, traceEvent{
			Name: key, Ph: "M", Pid: pid, Args: map[string]any{"name": name},
		})
	}
	meta(0, "process_name", "platform")
	for _, name := range names {
		pid := services[name]
		meta(pid, "process_name", name)
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidIaaS,
			Args: map[string]any{"name": "iaas"}})
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidServerless,
			Args: map[string]any{"name": "serverless"}})
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidControl,
			Args: map[string]any{"name": "control"}})
	}

	for _, ev := range p.events {
		switch e := ev.(type) {
		case *obs.QueryComplete:
			out = append(out, traceEvent{
				Name: "query", Ph: "X", Ts: us(e.Arrived), Dur: us(e.At - e.Arrived),
				Pid: services[e.Service], Tid: backendTID(e.Backend),
				Args: spanArgs(e.Trace, e.Span, 0, e.Cause),
			})
		case *obs.PhaseSpan:
			out = append(out, traceEvent{
				Name: string(e.Phase), Ph: "X", Ts: us(e.Start), Dur: us(e.End - e.Start),
				Pid: services[e.Service], Tid: backendTID(e.Backend),
				Args: spanArgs(e.Trace, e.Span, e.Parent, e.Cause),
			})
		case *obs.SwitchSpan:
			args := spanArgs(e.Trace, e.Span, 0, e.Decision)
			if args == nil {
				args = map[string]any{}
			}
			args["from"], args["to"], args["aborted"] = e.From, e.To, e.Aborted
			out = append(out, traceEvent{
				Name: "switch " + e.From + "→" + e.To, Ph: "X",
				Ts: us(e.Start), Dur: us(e.End - e.Start),
				Pid: services[e.Service], Tid: tidControl, Args: args,
			})
		case *obs.DecisionEvent:
			args := spanArgs(e.Trace, e.Span, 0, e.MeterSpan)
			if args == nil {
				args = map[string]any{}
			}
			args["reason"] = e.Reason
			out = append(out, traceEvent{
				Name: "decision: " + e.Verdict, Ph: "i", Ts: us(e.At),
				Pid: services[e.Service], Tid: tidControl, S: "t", Args: args,
			})
		case *obs.ColdStart:
			name := "cold_start"
			if e.Prewarm {
				name = "prewarm"
			}
			out = append(out, traceEvent{
				Name: name, Ph: "i", Ts: us(e.At),
				Pid: services[e.Service], Tid: tidServerless, S: "t",
				Args: map[string]any{"delay_s": e.Delay.Raw()},
			})
		case *obs.HeartbeatSample:
			out = append(out, traceEvent{
				Name: "heartbeat", Ph: "i", Ts: us(e.At),
				Pid: services[e.Service], Tid: tidControl, S: "t",
				Args: spanArgs(e.Trace, e.Span, 0, e.MeterSpan),
			})
		case *obs.MeterSample:
			out = append(out, traceEvent{
				Name: "pressure", Ph: "C", Ts: us(e.At), Pid: 0,
				Args: map[string]any{
					"cpu": e.Pressure[0], "io": e.Pressure[1], "net": e.Pressure[2],
				},
			})
		}
	}
	return out
}

// writeFile renders the export and writes the JSON object wrapper.
func (p *perfettoExporter) writeFile(path string) error {
	events := p.render()
	p.emitted = len(events)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkPerfettoFile structurally checks an exported trace: the wrapper
// shape, a non-empty event array, known phase letters, non-negative
// durations, and a process_name for every referenced pid — enough to
// catch a broken export in CI without a UI.
func checkPerfettoFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var wrapper struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		return fmt.Errorf("not a trace-event JSON object: %v", err)
	}
	if len(wrapper.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents array")
	}
	named := map[int]bool{}
	pids := map[int]bool{}
	for i, ev := range wrapper.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative duration %g", i, ev.Name, ev.Dur)
			}
			pids[ev.Pid] = true
		case "M":
			if ev.Name == "process_name" {
				named[ev.Pid] = true
			}
		case "i", "C":
			pids[ev.Pid] = true
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	for pid := range pids {
		if !named[pid] {
			return fmt.Errorf("pid %d has events but no process_name metadata", pid)
		}
	}
	return nil
}
