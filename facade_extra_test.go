package amoeba_test

import (
	"strings"
	"testing"

	"amoeba"
)

func TestLoadTraceCSVThroughFacade(t *testing.T) {
	tr, err := amoeba.LoadTraceCSV(strings.NewReader("0,10\n100,50\n200,20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rate(100) != 50 || tr.Peak() != 50 {
		t.Errorf("replayed trace wrong: rate(100)=%v peak=%v", tr.Rate(100), tr.Peak())
	}
	if _, err := amoeba.LoadTraceCSV(strings.NewReader("garbage")); err == nil {
		t.Error("malformed CSV accepted")
	}
}

func TestSampledTraceThroughFacade(t *testing.T) {
	tr, err := amoeba.SampledTrace([]float64{0, 10}, []float64{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rate(5) != 10 {
		t.Errorf("midpoint = %v, want 10", tr.Rate(5))
	}
	if _, err := amoeba.SampledTrace([]float64{0}, []float64{1}); err == nil {
		t.Error("single-sample trace accepted")
	}
}

func TestAutoscaleVariantThroughFacade(t *testing.T) {
	prof, _ := amoeba.BenchmarkByName("float")
	opts := amoeba.DefaultScenarioOptions()
	res := amoeba.Run(amoeba.NewScenario(amoeba.Autoscale, prof, opts))
	sr := res.Services[prof.Name]
	if sr.Collector.Count() < 1000 {
		t.Fatalf("only %d queries", sr.Collector.Count())
	}
	// The autoscaler must allocate less than the static peak deployment.
	nk := amoeba.Run(amoeba.NewScenario(amoeba.Nameko, prof, opts)).Services[prof.Name]
	if sr.TotalUsage().CPU >= nk.TotalUsage().CPU {
		t.Errorf("autoscaler CPU %v not below static %v",
			sr.TotalUsage().CPU, nk.TotalUsage().CPU)
	}
}

func TestCustomBenchmarkValidatesThroughFacade(t *testing.T) {
	b := amoeba.Benchmark{
		Name:        "svc",
		ExecTime:    0.1,
		QoSTarget:   0.3,
		Demand:      amoeba.ResourceVector{CPU: 1, MemMB: 100},
		Sensitivity: amoeba.Sensitivity{CPU: 0.5},
		PeakQPS:     10,
		VMCores:     2,
		VMMemMB:     4096,
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid custom benchmark rejected: %v", err)
	}
	b.QoSTarget = 0.05 // below exec time
	if b.Validate() == nil {
		t.Error("impossible QoS target accepted")
	}
}
