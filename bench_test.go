// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§VII), plus ablations of the design decisions
// called out in DESIGN.md. Each benchmark regenerates the corresponding
// artifact and reports the headline measurements as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set end to end. Results are deterministic
// per seed; wall-clock time measures the simulator, not the metrics.
package amoeba_test

import (
	"fmt"
	"math"
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/contention"
	"amoeba/internal/controller"
	"amoeba/internal/core"
	"amoeba/internal/experiments"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/stats"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Quick = true
	return cfg
}

// benchSuite is shared across benchmarks so figure targets that reuse the
// same scenario runs (Fig. 10/11/12/13/14/16) do not re-simulate.
var benchSuite = experiments.NewSuite(benchCfg())

func BenchmarkTableIISetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.TableII().Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIIIBenchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.TableIII().Rows() != 5 {
			b.Fatal("wrong benchmark count")
		}
	}
}

func BenchmarkFig02IaaSUtilization(b *testing.B) {
	var last *experiments.Fig02Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig02(benchCfg())
	}
	lo, hi := 1.0, 0.0
	for _, r := range last.Rows {
		if r.Lowest < lo {
			lo = r.Lowest
		}
		if r.Highest > hi {
			hi = r.Highest
		}
	}
	b.ReportMetric(lo*100, "min_util_%")
	b.ReportMetric(hi*100, "max_util_%")
}

func BenchmarkFig03PeakLoad(b *testing.B) {
	var last *experiments.Fig03Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig03(benchCfg())
	}
	sum := 0.0
	for _, r := range last.Rows {
		sum += r.Ratio
	}
	b.ReportMetric(sum/float64(len(last.Rows))*100, "svless_peak_%of_iaas")
}

func BenchmarkFig04Breakdown(b *testing.B) {
	var last *experiments.Fig04Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig04(benchCfg())
	}
	lo, hi := 1.0, 0.0
	for _, r := range last.Rows {
		if r.OverheadFrac < lo {
			lo = r.OverheadFrac
		}
		if r.OverheadFrac > hi {
			hi = r.OverheadFrac
		}
	}
	b.ReportMetric(lo*100, "min_overhead_%")
	b.ReportMetric(hi*100, "max_overhead_%")
}

func BenchmarkFig08MeterCurves(b *testing.B) {
	var last *experiments.Fig08Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig08(benchCfg())
	}
	c := last.Curves[0]
	b.ReportMetric(c.Latencies[len(c.Latencies)-1]/c.Latencies[0], "cpu_meter_latency_rise_x")
}

func BenchmarkFig09Surfaces(b *testing.B) {
	var last *experiments.Fig09Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig09Default(benchCfg())
	}
	sf := last.Set.Surfaces[1] // dd's IO surface
	b.ReportMetric(sf.Lat[len(sf.Pressures)-1][0]/sf.Lat[0][0], "dd_io_surface_rise_x")
}

func BenchmarkFig10LatencyCDF(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig10(benchSuite)
	}
	violators := 0
	for _, e := range last.Entries {
		if e.System == core.VariantOpenWhisk && !e.QoSMet {
			violators++
		}
	}
	b.ReportMetric(float64(violators), "openwhisk_violations")
}

func BenchmarkFig11ResourceUsage(b *testing.B) {
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig11(benchSuite)
	}
	maxCPU, maxMem := 0.0, 0.0
	for _, r := range last.Rows {
		if r.CPUSavedFrac > maxCPU {
			maxCPU = r.CPUSavedFrac
		}
		if r.MemSavedFrac > maxMem {
			maxMem = r.MemSavedFrac
		}
	}
	b.ReportMetric(maxCPU*100, "max_cpu_saved_%")
	b.ReportMetric(maxMem*100, "max_mem_saved_%")
}

func BenchmarkFig12SwitchTimeline(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig12(benchSuite)
	}
	switches := 0
	for _, tl := range last.Timelines {
		switches += tl.ToServerless + tl.ToIaaS
	}
	b.ReportMetric(float64(switches), "switches")
}

func BenchmarkFig13UsageTimeline(b *testing.B) {
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig13(benchSuite)
	}
	b.ReportMetric(float64(len(last.Timelines[0].Snapshots)), "snapshots")
}

func BenchmarkFig14AmoebaNoM(b *testing.B) {
	var last *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig14(benchSuite)
	}
	maxCPU, maxMem := 0.0, 0.0
	for _, r := range last.Rows {
		if r.CPUIncrease > maxCPU {
			maxCPU = r.CPUIncrease
		}
		if r.MemIncrease > maxMem {
			maxMem = r.MemIncrease
		}
	}
	b.ReportMetric(maxCPU, "nom_cpu_increase_x")
	b.ReportMetric(maxMem, "nom_mem_increase_x")
}

func BenchmarkFig15DiscriminantError(b *testing.B) {
	var last *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig15(benchSuite)
	}
	var sumA, sumN float64
	for _, r := range last.Rows {
		sumA += r.AmoebaErr
		sumN += r.NoMErr
	}
	n := float64(len(last.Rows))
	b.ReportMetric(sumA/n*100, "amoeba_err_%")
	b.ReportMetric(sumN/n*100, "nom_err_%")
}

func BenchmarkFig16AmoebaNoP(b *testing.B) {
	var last *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig16(benchSuite)
	}
	hi := 0.0
	for _, r := range last.Rows {
		if r.ViolationFrac > hi {
			hi = r.ViolationFrac
		}
	}
	b.ReportMetric(hi*100, "max_nop_violation_%")
}

func BenchmarkOverheadMeters(b *testing.B) {
	var last *experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		last = experiments.Overhead(benchSuite)
	}
	total := 0.0
	for _, r := range last.Rows {
		total += r.AnalyticFrac
	}
	b.ReportMetric(total*100, "meters_cpu_%")
}

// BenchmarkExtElasticity regenerates the extension comparison of Amoeba
// against a Kubernetes-style VM autoscaler.
func BenchmarkExtElasticity(b *testing.B) {
	var last *experiments.ElasticityResult
	for i := 0; i < b.N; i++ {
		last = experiments.Elasticity(benchSuite)
	}
	var amoebaViol, autoscaleViol float64
	for _, r := range last.Rows {
		amoebaViol += r.AmoebaViolations
		autoscaleViol += r.AutoscaleViolations
	}
	n := float64(len(last.Rows))
	b.ReportMetric(amoebaViol/n*100, "amoeba_violation_%")
	b.ReportMetric(autoscaleViol/n*100, "autoscale_violation_%")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationDiscriminant compares the closed-form Eq. 5 against the
// bisection the controller actually uses.
func BenchmarkAblationDiscriminant(b *testing.B) {
	const mu, n, td, r = 4.0, 10, 0.4, 0.95
	var cf, bs units.QPS
	for i := 0; i < b.N; i++ {
		bs = queueing.DiscriminantBisect(mu, n, td, r)
		q := queueing.MMN{Lambda: bs.Raw(), Mu: mu, N: n}
		cf = queueing.DiscriminantClosedForm(q, td, r)
	}
	b.ReportMetric(bs.Raw(), "bisect_qps")
	b.ReportMetric(cf.Raw(), "closed_form_qps")
}

// BenchmarkAblationInterferenceModel quantifies the additive-vs-q-norm gap
// that gives Amoeba-NoM its pessimism.
func BenchmarkAblationInterferenceModel(b *testing.B) {
	model := contention.NewModel(serverless.DefaultConfig().Node.Capacity())
	s := workload.DD().Sensitivity
	p := contention.Pressure{CPU: 0.5, IO: 0.5, Net: 0.3}
	var truth, additive float64
	for i := 0; i < b.N; i++ {
		truth = model.Slowdown(p, s)
		additive = model.AdditiveSlowdown(p, s)
	}
	b.ReportMetric(truth, "qnorm_slowdown")
	b.ReportMetric(additive, "additive_slowdown")
}

// BenchmarkAblationPrewarmHeadroom sweeps Eq. 7's headroom, reporting the
// violation fraction at each setting for dd.
func BenchmarkAblationPrewarmHeadroom(b *testing.B) {
	prof := workload.DD()
	cfg := benchCfg()
	var frac float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(cfg, prof, core.VariantAmoeba)
		res := core.Run(sc)
		frac = res.Services[prof.Name].Collector.ViolationFraction()
	}
	b.ReportMetric(frac*100, "violation_%")
}

// BenchmarkAblationWeights compares admissible loads predicted with w0
// versus calibrated weights under a fixed contention point.
func BenchmarkAblationWeights(b *testing.B) {
	prof := workload.DD()
	slCfg := serverless.DefaultConfig()
	set := core.SurfaceSet(prof, slCfg)
	pred, err := controller.NewPredictor(prof, set, 10, 0.95)
	if err != nil {
		b.Fatal(err)
	}
	learned := monitor.Weights{W: [3]float64{0.3, 0.8, 0.1}, Learned: true}
	pressure := [3]float64{0.2, 0.3, 0.1}
	var admW0, admL units.QPS
	for i := 0; i < b.N; i++ {
		admW0 = pred.AdmissibleLoad(monitor.InitialWeights(), pressure)
		admL = pred.AdmissibleLoad(learned, pressure)
	}
	b.ReportMetric(admW0.Raw(), "w0_admissible_qps")
	b.ReportMetric(admL.Raw(), "calibrated_admissible_qps")
}

// BenchmarkAblationWarmPoolStrategy compares two cold-start mitigations
// on a pure serverless deployment at low load: Amoeba-style on-demand
// reuse (no floor) versus the static warm-pool of Lin & Glikson [20]
// (related work §VIII). The static pool eliminates cold starts at a
// standing memory cost; the metrics expose the trade.
func BenchmarkAblationWarmPoolStrategy(b *testing.B) {
	run := func(minWarm int) (coldStarts int, memMBs float64) {
		s := sim.New(99)
		pool := serverless.New(s, serverless.DefaultConfig())
		prof := workload.Float()
		queryCold := 0
		opts := []serverless.RegisterOption{}
		if minWarm > 0 {
			opts = append(opts, serverless.WithMinWarm(minWarm))
		}
		pool.Register(prof, func(r metrics.QueryRecord) {
			if r.Breakdown.ColdStart > 0 {
				queryCold++
			}
		}, opts...)
		// Sparse Poisson traffic: mean gap 20s, beyond the 60s idle
		// window often enough that cold starts happen without a floor.
		gen := arrival.New(s, trace.Constant{QPS: 0.05}, func(sim.Time) { pool.Invoke(prof.Name) })
		gen.Start()
		s.Run(7200)
		return queryCold, pool.UsageFor(prof.Name).MemMB
	}
	var coldNo, coldPool int
	var memNo, memPool float64
	for i := 0; i < b.N; i++ {
		coldNo, memNo = run(0)
		coldPool, memPool = run(2)
	}
	b.ReportMetric(float64(coldNo), "cold_starts_no_pool")
	b.ReportMetric(float64(coldPool), "cold_starts_warm_pool")
	b.ReportMetric(memPool/memNo, "warm_pool_mem_cost_x")
}

// --- Kernel benches (DESIGN.md §10) ---

// BenchmarkScenarioRun measures end-to-end simulation throughput of one
// full Amoeba scenario (dd, quick day). events/s is the headline number
// pinned in BENCH_sim.json: it is the rate every figure reproduction and
// sweep is bottlenecked on.
func BenchmarkScenarioRun(b *testing.B) {
	prof := workload.DD()
	cfg := benchCfg()
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(benchScenario(cfg, prof, core.VariantAmoeba))
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkScenarioSharded measures the sharded kernel on an
// O(100)-service synthetic fleet at fixed shard counts. shards-1 is the
// single-worker baseline pinned in BENCH_sim.json (its events/s must
// stay within noise of BenchmarkScenarioRun's rate per event); the
// scale-up at shards-2/4/8 is only meaningful on hardware with that
// many idle cores — the acceptance bar is >=3x at 8 shards on >=8 idle
// cores — which is why BENCH_sim.json records hand-refreshed numbers
// from quiet multi-core hardware rather than CI measurements.
func BenchmarkScenarioSharded(b *testing.B) {
	const fleetSize = 100
	sc := core.FleetScenario(fleetSize, 0xA0EBA, 600)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = core.RunSharded(sc, shards).Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSuiteParallel measures sweep throughput of the parallel
// experiment driver at fixed worker counts. Each iteration sweeps a
// fresh suite — the memo would absorb all work after the first pass —
// so events/s is the end-to-end rate of |benchmarks| x |variants|
// independent simulations through the bounded pool. parallel-1 is the
// single-threaded baseline pinned in BENCH_sim.json (it must not
// regress against BenchmarkScenarioRun's rate); the scale-up at
// parallel-2/4/8 is only meaningful on hardware with that many idle
// cores, which is why BENCH_sim.json records hand-refreshed numbers
// from quiet multi-core hardware rather than CI measurements.
func BenchmarkSuiteParallel(b *testing.B) {
	cfg := benchCfg()
	cfg.DayLength = 600 // one sweep = 4 quick sims; keeps an iteration short
	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko}
	profs := []workload.Profile{workload.Float(), workload.DD()} // quick-mode benchmarks
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				s := experiments.NewSuite(cfg)
				s.Parallel = workers
				if err := s.Sweep(variants...); err != nil {
					b.Fatal(err)
				}
				events = 0
				for _, prof := range profs {
					for _, v := range variants {
						events += s.Run(prof, v).Events
					}
				}
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkQuantileWindow compares the three ways to account a per-window
// p95 over a latency stream: allocating a fresh exact sample every window
// (the pre-optimisation pattern), reusing one exact sample via Reset, and
// the P² streaming estimator the windowed tracker now uses. The stream is
// the same log-normal latency shape the workloads produce; each iteration
// processes one 4096-query window and reads its p95.
func BenchmarkQuantileWindow(b *testing.B) {
	rng := sim.New(11).RNG()
	const window = 4096
	vals := make([]float64, window)
	for i := range vals {
		vals[i] = rng.LogNormal(math.Log(0.1), 0.5)
	}
	var p95 float64
	b.Run("sample-per-window", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := stats.NewSample(window)
			for _, v := range vals {
				s.Add(v)
			}
			p95 = s.P95()
		}
	})
	b.Run("sample-reset", func(b *testing.B) {
		b.ReportAllocs()
		s := stats.NewSample(window)
		for i := 0; i < b.N; i++ {
			s.Reset()
			for _, v := range vals {
				s.Add(v)
			}
			p95 = s.P95()
		}
	})
	b.Run("p2-reset", func(b *testing.B) {
		b.ReportAllocs()
		q := stats.NewP2Quantile(0.95)
		for i := 0; i < b.N; i++ {
			q.Reset()
			for _, v := range vals {
				q.Add(v)
			}
			p95 = q.Value()
		}
	})
	b.ReportMetric(p95, "last_p95_s")
}

// --- Telemetry benches (DESIGN.md §9) ---

// BenchmarkEventEmit measures the per-event cost of the obs bus: the
// guarded no-sink path (which must stay allocation-free — the event
// literal is never constructed), a ring sink, and the metrics-folding
// sink. Results are recorded in BENCH_obs.json.
//
//amoeba:alloctest obs.Bus.Active obs.Bus.Emit
func BenchmarkEventEmit(b *testing.B) {
	mkEvent := func(bus *obs.Bus, i int) {
		if bus.Active() {
			bus.Emit(&obs.QueryComplete{
				At:      units.Seconds(float64(i)),
				Service: "dd",
				Backend: "serverless",
				Latency: 0.0123,
			})
		}
	}
	b.Run("no-sink", func(b *testing.B) {
		var bus *obs.Bus
		if avg := testing.AllocsPerRun(1000, func() { mkEvent(bus, 1) }); avg != 0 {
			b.Fatalf("no-sink emit allocates %.1f objects per event; the guard must be free", avg)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mkEvent(bus, i)
		}
	})
	b.Run("ring", func(b *testing.B) {
		bus := obs.NewBus()
		bus.Attach(obs.NewRing(1 << 12))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mkEvent(bus, i)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		bus := obs.NewBus()
		bus.Attach(obs.NewMetricsSink(obs.NewRegistry()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mkEvent(bus, i)
		}
	})
	b.Run("span-no-sink", func(b *testing.B) {
		// The causal-tracing analogue of no-sink: a full query span cycle
		// (trace allocation, Begin, End) against a sinkless tracer must
		// stay allocation-free — tracing off costs one branch per site.
		tr := obs.NewTracer(nil)
		cycle := func() {
			qt := tr.StartQuery("dd")
			h := tr.Begin(1, qt.Trace, qt.Span, 0, obs.PhaseExec, "dd", "serverless")
			tr.End(2, h)
		}
		if avg := testing.AllocsPerRun(1000, cycle); avg != 0 {
			b.Fatalf("unobserved span cycle allocates %.1f objects; the guard must be free", avg)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	})
}

// BenchmarkHistogramVsSample compares the bounded log-linear histogram
// against the exact sorted sample on the same log-uniform latency data:
// ingest throughput, p95 agreement, and memory behaviour (the histogram
// is O(buckets), the sample O(n)).
func BenchmarkHistogramVsSample(b *testing.B) {
	rng := sim.New(7).RNG()
	vals := make([]float64, 1<<16)
	for i := range vals {
		// Log-uniform over [1ms, 10s] — the latency range the sink covers.
		vals[i] = 1e-3 * math.Exp(rng.Float64()*math.Log(1e4))
	}
	var hp95, sp95 float64
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := obs.NewHistogram(1e-3, 100, 32)
			for _, v := range vals {
				h.Observe(v)
			}
			hp95 = h.P95()
		}
		b.ReportMetric(float64(len(vals))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mobs/s")
	})
	b.Run("sample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := stats.NewSample(len(vals))
			s.AddAll(vals)
			sp95 = s.P95()
		}
		b.ReportMetric(float64(len(vals))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mobs/s")
	})
	rel := (hp95 - sp95) / sp95
	if rel < 0 {
		rel = -rel
	}
	if rel > 2.0/32 {
		b.Fatalf("histogram p95 %.5f vs exact %.5f: rel err %.4f beyond bound", hp95, sp95, rel)
	}
	b.ReportMetric(rel*100, "p95_rel_err_%")
}

func benchScenario(cfg experiments.Config, prof workload.Profile, v core.Variant) core.Scenario {
	return core.Scenario{
		Variant: v,
		Services: []core.ServiceSpec{{
			Profile: prof,
			Trace: trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*cfg.TroughFraction.Raw(),
				cfg.DayLength.Raw(), cfg.Seed),
		}},
		Background: core.BackgroundTenants(cfg.DayLength, cfg.Seed+7),
		Duration:   cfg.DayLength,
		Seed:       cfg.Seed,
	}
}
