package amoeba_test

import (
	"testing"

	"amoeba"
)

func TestBenchmarksSuite(t *testing.T) {
	bs := amoeba.Benchmarks()
	if len(bs) != 5 {
		t.Fatalf("got %d benchmarks, want 5", len(bs))
	}
	want := []string{"float", "matmul", "linpack", "dd", "cloud_stor"}
	for i, b := range bs {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
	}
	if _, err := amoeba.BenchmarkByName("float"); err != nil {
		t.Errorf("BenchmarkByName(float): %v", err)
	}
	if _, err := amoeba.BenchmarkByName("bogus"); err == nil {
		t.Error("BenchmarkByName(bogus) did not error")
	}
}

func TestPublicRunEndToEnd(t *testing.T) {
	prof, err := amoeba.BenchmarkByName("float")
	if err != nil {
		t.Fatal(err)
	}
	opts := amoeba.DefaultScenarioOptions()
	res := amoeba.Run(amoeba.NewScenario(amoeba.Amoeba, prof, opts))
	sr := res.Services[prof.Name]
	if sr == nil {
		t.Fatal("no service result")
	}
	if sr.Collector.Count() < 1000 {
		t.Fatalf("only %d queries", sr.Collector.Count())
	}
	if !sr.Collector.QoSMet() {
		t.Errorf("Amoeba violated QoS via public API: p95 %v > %v",
			sr.Collector.P95(), prof.QoSTarget)
	}
	if sr.Timeline.SwitchCount(amoeba.BackendServerless) == 0 {
		t.Error("no switch to serverless over a full day")
	}
}

func TestPublicRunDeterminism(t *testing.T) {
	prof, _ := amoeba.BenchmarkByName("dd")
	opts := amoeba.DefaultScenarioOptions()
	a := amoeba.Run(amoeba.NewScenario(amoeba.Nameko, prof, opts))
	b := amoeba.Run(amoeba.NewScenario(amoeba.Nameko, prof, opts))
	if a.Services[prof.Name].Collector.P95() != b.Services[prof.Name].Collector.P95() {
		t.Error("public API runs are not deterministic")
	}
}

func TestCustomTraceScenario(t *testing.T) {
	prof, _ := amoeba.BenchmarkByName("matmul")
	sc := amoeba.Scenario{
		Variant:  amoeba.OpenWhisk,
		Services: []amoeba.ServiceSpec{{Profile: prof, Trace: amoeba.ConstantTrace(5)}},
		Duration: 300,
		Seed:     1,
	}
	res := amoeba.Run(sc)
	sr := res.Services[prof.Name]
	if sr.Collector.Count() < 1000 {
		t.Fatalf("only %d queries at 5 QPS over 300s", sr.Collector.Count())
	}
	// 5 QPS is far below matmul's serverless capacity: QoS holds.
	if !sr.Collector.QoSMet() {
		t.Errorf("OpenWhisk at trivial load violated QoS: p95 %v", sr.Collector.P95())
	}
}

func TestNewScenarioValidation(t *testing.T) {
	prof, _ := amoeba.BenchmarkByName("float")
	opts := amoeba.DefaultScenarioOptions()
	opts.DayLength = 0
	defer func() {
		if recover() == nil {
			t.Error("zero day length did not panic")
		}
	}()
	amoeba.NewScenario(amoeba.Amoeba, prof, opts)
}
