// Package amoeba is the public API of this reproduction of "Amoeba:
// QoS-Awareness and Reduced Resource Usage of Microservices with
// Serverless Computing" (Li et al., IPDPS 2020).
//
// Amoeba is a runtime that switches each microservice between an
// IaaS-based deployment (long-term rented VMs) and a serverless-based
// deployment (a shared FaaS container pool) so that resource usage is
// minimised while the 95%-ile latency stays within the QoS target. The
// switching decision is contention-aware: a multi-resource contention
// monitor quantifies the pressure on the shared pool's CPU, disk and
// network through probe functions ("contention meters"), and a
// controller predicts the admissible load λ(μ_n) from an M/M/N
// discriminant whose per-container capacity μ_n is calibrated online with
// PCA regression.
//
// The package wraps the internal implementation behind a stable surface:
//
//   - Benchmarks:   the FunctionBench-like workload suite (Table III)
//   - Scenario/Run: full-system simulations for any variant
//     (Amoeba, Amoeba-NoM, Amoeba-NoP, pure IaaS, pure serverless)
//   - Experiments:  one driver per table/figure of the paper (§VII)
//
// Quick start:
//
//	prof, _ := amoeba.BenchmarkByName("dd")
//	sc := amoeba.NewScenario(amoeba.Amoeba, prof, amoeba.DefaultScenarioOptions())
//	res := amoeba.Run(sc)
//	sr := res.Services[prof.Name]
//	fmt.Println("p95:", sr.Collector.P95(), "QoS met:", sr.Collector.QoSMet())
package amoeba

import (
	"io"

	"amoeba/internal/contention"
	"amoeba/internal/core"
	"amoeba/internal/experiments"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/report"
	"amoeba/internal/resources"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Unit types re-exported from internal/units. All public signatures that
// carry a duration, an arrival rate, or a unitless ratio use these defined
// types instead of bare float64, so the compiler (and the unitcheck
// analyzer in cmd/amoeba-vet) can catch argument swaps and dimensional
// mistakes. Convert explicitly: Seconds(1.5), qps.Raw().
type (
	// Seconds is a duration or point in virtual time.
	Seconds = units.Seconds
	// Millis is a duration in milliseconds (reporting only).
	Millis = units.Millis
	// QPS is an arrival rate in queries per second.
	QPS = units.QPS
	// ServiceRate is a per-container processing capacity μ.
	ServiceRate = units.ServiceRate
	// Fraction is a dimensionless ratio, usually in [0, 1].
	Fraction = units.Fraction
	// MegaBytes is a memory size.
	MegaBytes = units.MegaBytes
	// Cores is a CPU core count (fractional allowed).
	Cores = units.Cores
)

// Variant selects the system under evaluation.
type Variant = core.Variant

// The five systems of the evaluation (§VII).
const (
	Amoeba    = core.VariantAmoeba    // full system
	AmoebaNoM = core.VariantAmoebaNoM // monitor's PCA calibration disabled
	AmoebaNoP = core.VariantAmoebaNoP // container prewarm disabled
	Nameko    = core.VariantNameko    // pure IaaS baseline
	OpenWhisk = core.VariantOpenWhisk // pure serverless baseline
	// Autoscale is an extension baseline beyond the paper: a
	// Kubernetes-style horizontal VM autoscaler on the IaaS platform.
	Autoscale = core.VariantAutoscale
)

// Benchmark is one microservice workload profile (Table III). Construct
// custom profiles with composite literals; Validate reports mistakes.
type Benchmark = workload.Profile

// ResourceVector is a demand or capacity across the four shared
// resources: CPU cores, memory MB, disk MB/s, network Mb/s.
type ResourceVector = resources.Vector

// Sensitivity is a service's susceptibility to contention on each
// meter-visible resource, in [0, 1] (Table III).
type Sensitivity = contention.Sensitivity

// Overheads is the serverless per-query latency anatomy (Fig. 4).
type Overheads = workload.Overheads

// ContainerMemMB is the serverless container size of Table II (256 MB).
const ContainerMemMB = workload.ContainerMemMB

// Benchmarks returns the five FunctionBench-like workloads in Table III
// order: float, matmul, linpack, dd, cloud_stor.
func Benchmarks() []Benchmark { return workload.All() }

// BenchmarkByName looks a benchmark up by its Table III name.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// Scenario describes one evaluation run; build it with NewScenario or
// assemble it directly for multi-service setups.
type Scenario = core.Scenario

// ServiceSpec pairs a benchmark with its load trace.
type ServiceSpec = core.ServiceSpec

// Result is a completed run; Services holds per-benchmark outcomes.
type Result = core.Result

// ServiceResult is one benchmark's outcome: latency collector, switch
// timeline, resource usage integrals, and controller decisions.
type ServiceResult = core.ServiceResult

// Backend identifies which deployment served a query.
type Backend = metrics.Backend

// The two deployment modes.
const (
	BackendIaaS       = metrics.BackendIaaS
	BackendServerless = metrics.BackendServerless
)

// Trace is a time-varying arrival-rate function.
type Trace = trace.Trace

// ConstantTrace returns a flat trace at the given QPS.
func ConstantTrace(qps QPS) Trace { return trace.Constant{QPS: qps.Raw()} }

// DiurnalTrace returns a Didi-shaped daily load pattern: a deep night
// trough, morning and evening peaks, deterministic noise.
func DiurnalTrace(peakQPS, troughQPS QPS, dayLength Seconds, seed uint64) Trace {
	return trace.NewDiurnal(peakQPS.Raw(), troughQPS.Raw(), dayLength.Raw(), seed)
}

// LoadTraceCSV reads a two-column "time_seconds,qps" series into a
// replayable trace with linear interpolation — how a production trace
// (e.g. the Didi ride-request series the paper uses) enters a scenario.
func LoadTraceCSV(r io.Reader) (Trace, error) { return trace.LoadCSV(r) }

// SampledTrace builds a replayable trace from explicit (time, QPS)
// samples.
func SampledTrace(times, rates []float64) (Trace, error) {
	return trace.NewSampled(times, rates)
}

// ScenarioOptions tunes NewScenario.
type ScenarioOptions struct {
	// DayLength is the virtual length of one diurnal day.
	DayLength Seconds
	// Days is the horizon in days.
	Days float64
	// TroughFraction is the night trough as a fraction of the peak.
	TroughFraction Fraction
	// Seed fixes all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Background adds the paper's §VII-A co-tenants to the shared pool.
	Background bool
}

// DefaultScenarioOptions mirrors the evaluation setup: one compressed
// 3600-second day, a 20% trough, background tenants on.
func DefaultScenarioOptions() ScenarioOptions {
	return ScenarioOptions{
		DayLength:      3600,
		Days:           1,
		TroughFraction: 0.2,
		Seed:           0xA0EBA,
		Background:     true,
	}
}

// NewScenario builds the paper's standard single-benchmark scenario: the
// benchmark under a diurnal load, optionally with the three background
// tenants sharing the serverless pool.
// It panics if the options specify a non-positive horizon.
func NewScenario(v Variant, prof Benchmark, opts ScenarioOptions) Scenario {
	if opts.DayLength <= 0 || opts.Days <= 0 {
		panic("amoeba: non-positive scenario horizon")
	}
	sc := Scenario{
		Variant: v,
		Services: []ServiceSpec{{
			Profile: prof,
			Trace: DiurnalTrace(QPS(prof.PeakQPS),
				units.Scale(QPS(prof.PeakQPS), opts.TroughFraction.Raw()),
				opts.DayLength, opts.Seed),
		}},
		Duration: units.Scale(opts.DayLength, opts.Days),
		Seed:     opts.Seed,
	}
	if opts.Background {
		sc.Background = core.BackgroundTenants(opts.DayLength, opts.Seed+7)
	}
	return sc
}

// Run executes a scenario to completion. Runs are deterministic for a
// given scenario and seed.
func Run(sc Scenario) *Result { return core.Run(sc) }

// RunSharded executes a scenario on the K-worker sharded kernel
// (DESIGN.md §15): services advance on per-shard event heaps and couple
// through the shared pool pressure only at monitor-sample-period epoch
// barriers. Output is deterministic in (scenario, seed) and identical
// for every shard count, including shards=1.
func RunSharded(sc Scenario, shards int) *Result { return core.RunSharded(sc, shards) }

// SyntheticFleet generates n managed services cycling the five
// archetypes with Zipf-skewed diurnal loads — a fleet-shaped input for
// scale tests and the sharded benchmarks.
func SyntheticFleet(n int, seed uint64) []ServiceSpec { return core.SyntheticFleet(n, seed) }

// BackgroundTenants returns the §VII-A co-tenant set (float, dd,
// cloud_stor at a low diurnal load) for custom scenarios.
func BackgroundTenants(dayLength Seconds, seed uint64) []ServiceSpec {
	return core.BackgroundTenants(dayLength, seed)
}

// Telemetry re-exports from internal/obs. Attach sinks to an EventBus,
// set it on Scenario.Bus, and every decision, switch phase, cold start,
// completed query, heartbeat, and meter refresh of the run becomes an
// inspectable event. With a nil bus the instrumented code paths cost one
// nil check — observation is strictly opt-in.
type (
	// EventBus fans telemetry events out to attached sinks.
	EventBus = obs.Bus
	// Event is one telemetry record; see the obs package for the taxonomy.
	Event = obs.Event
	// EventKind discriminates event types in the serialized stream.
	EventKind = obs.Kind
	// EventSink consumes emitted events.
	EventSink = obs.Sink
	// EventJSONLWriter streams events as one JSON object per line.
	EventJSONLWriter = obs.JSONLWriter
	// EventRing retains the most recent events in memory.
	EventRing = obs.Ring
	// MetricsRegistry holds counters, gauges, and bounded histograms with
	// Prometheus-text and expvar exposition.
	MetricsRegistry = obs.Registry
	// DecisionEvent is one controller decision with the full Eq. 5
	// discriminant inputs, the verdict, and its reason.
	DecisionEvent = obs.DecisionEvent
	// SwitchSpan is one deploy-mode transition with per-phase durations.
	SwitchSpan = obs.SwitchSpan
	// TraceID identifies one causal tree in the event stream (0 =
	// untraced); SpanID one span within a run. Every traced run's JSONL
	// stream is a reconstructable DAG over these.
	TraceID = obs.TraceID
	// SpanID identifies one span (interval or instant) in the stream.
	SpanID = obs.SpanID
	// TracePhase names the typed query/control phases (queue wait, cold
	// start, exec, drain, retry) a PhaseSpan records.
	TracePhase = obs.Phase
	// PhaseSpan is one closed phase interval of a traced query or switch.
	PhaseSpan = obs.PhaseSpan
)

// The event taxonomy (EventRing.Filter keys).
const (
	KindQueryComplete = obs.KindQueryComplete
	KindColdStart     = obs.KindColdStart
	KindDecision      = obs.KindDecision
	KindSwitchSpan    = obs.KindSwitchSpan
	KindHeartbeat     = obs.KindHeartbeat
	KindMeterSample   = obs.KindMeterSample
	KindPhaseSpan     = obs.KindPhaseSpan
)

// The trace-phase taxonomy (PhaseSpan.Phase values).
const (
	PhaseQueueWait = obs.PhaseQueueWait
	PhaseColdStart = obs.PhaseColdStart
	PhaseExec      = obs.PhaseExec
	PhaseDrain     = obs.PhaseDrain
	PhaseRetry     = obs.PhaseRetry
)

// NewEventBus returns an empty telemetry bus.
func NewEventBus() *EventBus { return obs.NewBus() }

// NewEventJSONLWriter wraps w as a JSONL event sink.
func NewEventJSONLWriter(w io.Writer) *EventJSONLWriter { return obs.NewJSONLWriter(w) }

// NewEventRing returns a bounded in-memory sink keeping the last n
// events. It panics if n is not positive.
func NewEventRing(n int) *EventRing { return obs.NewRing(n) }

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsSink returns a sink folding the event stream into reg.
func NewMetricsSink(reg *MetricsRegistry) EventSink { return obs.NewMetricsSink(reg) }

// DecisionAuditTable renders the decision-audit trail of an event stream:
// one row per DecisionEvent with load, μ̂, admissible load, pressure,
// verdict, and reason.
func DecisionAuditTable(events []Event) *report.Table { return obs.AuditTable(events) }

// SwitchSpanTable renders one row per SwitchSpan with the per-phase
// durations of the §V switch protocol.
func SwitchSpanTable(events []Event) *report.Table { return obs.SwitchTable(events) }

// ExperimentConfig scopes the paper-reproduction experiments.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the standard evaluation configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// ExperimentSuite memoises full scenario runs shared by several figures.
type ExperimentSuite = experiments.Suite

// NewExperimentSuite creates an experiment suite.
func NewExperimentSuite(cfg ExperimentConfig) *ExperimentSuite {
	return experiments.NewSuite(cfg)
}
